// Command grococa-benchjson converts `go test -bench -benchmem` output on
// stdin into canonical JSON on stdout: benchmarks sorted by qualified name,
// with the derived ops/sec rate alongside ns/op, B/op and allocs/op. The
// output carries no timestamps or machine identifiers, so a committed
// baseline (BENCH_seed.json, see `make bench-baseline`) diffs cleanly
// against a regenerated one.
//
// Example:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ | grococa-benchjson
//
// With -compare, the tool becomes a regression gate instead of a converter:
// fresh `go test -bench` output on stdin is compared against a committed
// baseline, and any benchmark present in both whose ops/sec dropped by more
// than -max-regress (fractional, default 0.30) fails the run. Benchmarks
// that exist on only one side are reported but never fail the gate, so
// adding a benchmark does not require regenerating every baseline.
//
//	go test -run '^$' -bench . -benchmem ./internal/network/ | \
//	    grococa-benchjson -compare BENCH_seed.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the package-qualified benchmark name; Procs the GOMAXPROCS
	// suffix of the raw line.
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp and OpsPerSec are the time per operation and its reciprocal
	// rate (events/sec for the kernel-dispatch and medium benchmarks).
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns (zero when the
	// input was produced without -benchmem).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Baseline is the output document.
type Baseline struct {
	Format     int         `json:"format"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON to gate against instead of emitting JSON")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated fractional ops/sec drop vs the baseline")
	flag.Parse()
	var err error
	if *compare != "" {
		err = runCompare(os.Stdin, os.Stdout, *compare, *maxRegress)
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (want `go test -bench` output)")
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Format: 1, Benchmarks: benches})
}

// runCompare parses fresh bench output on in and gates its ops/sec rates
// against the baseline file: a drop beyond maxRegress on any benchmark
// present in both is an error. One line per compared benchmark goes to out.
func runCompare(in io.Reader, out io.Writer, baselinePath string, maxRegress float64) error {
	if maxRegress < 0 {
		return fmt.Errorf("-max-regress %v must be non-negative", maxRegress)
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	fresh, err := parse(in)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (want `go test -bench` output)")
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Name < fresh[j].Name })

	var failures []string
	compared := 0
	for _, cur := range fresh {
		ref, ok := baseBy[cur.Name]
		if !ok {
			_, _ = fmt.Fprintf(out, "  new   %-60s %12.0f ops/sec (not in baseline, informational)\n", cur.Name, cur.OpsPerSec)
			continue
		}
		delete(baseBy, cur.Name)
		if ref.OpsPerSec <= 0 {
			continue
		}
		compared++
		change := cur.OpsPerSec/ref.OpsPerSec - 1
		status := "ok"
		if change < -maxRegress {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ops/sec (%+.1f%%, limit -%.0f%%)",
				cur.Name, ref.OpsPerSec, cur.OpsPerSec, 100*change, 100*maxRegress))
		}
		_, _ = fmt.Fprintf(out, "  %-5s %-60s %12.0f -> %12.0f ops/sec (%+.1f%%)\n",
			status, cur.Name, ref.OpsPerSec, cur.OpsPerSec, 100*change)
	}
	var gone []string
	for name := range baseBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		_, _ = fmt.Fprintf(out, "  gone  %-60s (in baseline, not on stdin, informational)\n", name)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark on stdin matched the baseline %s", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%:\n  %s",
			len(failures), 100*maxRegress, strings.Join(failures, "\n  "))
	}
	_, _ = fmt.Fprintf(out, "bench-compare ok: %d benchmark(s) within %.0f%% of %s\n", compared, 100*maxRegress, baselinePath)
	return nil
}

// parse walks the benchmark output, tracking `pkg:` headers to qualify
// names and decoding each Benchmark line's value/unit pairs.
func parse(in io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "pkg:" && len(fields) > 1 {
			pkg = fields[1]
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") || len(fields) < 2 {
			continue
		}
		b, err := parseLine(pkg, fields)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// parseLine decodes one `BenchmarkName-P  N  v unit  v unit ...` line.
func parseLine(pkg string, fields []string) (Benchmark, error) {
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	if pkg != "" {
		name = pkg + "." + name
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.OpsPerSec = 1e9 / v
			}
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, nil
}
