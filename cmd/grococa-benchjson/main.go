// Command grococa-benchjson converts `go test -bench -benchmem` output on
// stdin into canonical JSON on stdout: benchmarks sorted by qualified name,
// with the derived ops/sec rate alongside ns/op, B/op and allocs/op. The
// output carries no timestamps or machine identifiers, so a committed
// baseline (BENCH_seed.json, see `make bench-baseline`) diffs cleanly
// against a regenerated one.
//
// Example:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ | grococa-benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the package-qualified benchmark name; Procs the GOMAXPROCS
	// suffix of the raw line.
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp and OpsPerSec are the time per operation and its reciprocal
	// rate (events/sec for the kernel-dispatch and medium benchmarks).
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns (zero when the
	// input was produced without -benchmem).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Baseline is the output document.
type Baseline struct {
	Format     int         `json:"format"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grococa-benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (want `go test -bench` output)")
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(Baseline{Format: 1, Benchmarks: benches})
}

// parse walks the benchmark output, tracking `pkg:` headers to qualify
// names and decoding each Benchmark line's value/unit pairs.
func parse(in io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "pkg:" && len(fields) > 1 {
			pkg = fields[1]
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") || len(fields) < 2 {
			continue
		}
		b, err := parseLine(pkg, fields)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// parseLine decodes one `BenchmarkName-P  N  v unit  v unit ...` line.
func parseLine(pkg string, fields []string) (Benchmark, error) {
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	if pkg != "" {
		name = pkg + "." + name
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.OpsPerSec = 1e9 / v
			}
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, nil
}
