package main

import "testing"

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	// The smallest figure sweep at a drastically reduced request count;
	// still covers the full table-rendering path.
	if err := run([]string{"-exp", "skew", "-warmup", "3", "-requests", "5", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run([]string{"-exp", "hopdist", "-warmup", "3", "-requests", "5", "-q", "-csv"}); err != nil {
		t.Fatal(err)
	}
}
