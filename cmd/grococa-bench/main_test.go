package main

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	// The smallest figure sweep at a drastically reduced request count;
	// still covers the full table-rendering path.
	if err := run([]string{"-exp", "skew", "-warmup", "3", "-requests", "5", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadReps(t *testing.T) {
	if err := run([]string{"-reps", "0"}); err == nil {
		t.Error("-reps 0 accepted")
	}
}

// TestRunReplicatedParallelTiny drives the parallel replicated engine end
// to end through the command: a tiny sweep with -reps/-parallel must
// succeed and (byte-determinism is pinned in internal/experiments) render
// the mean±sd table path.
func TestRunReplicatedParallelTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run([]string{"-exp", "skew", "-tiny", "-warmup", "2", "-requests", "4", "-reps", "2", "-parallel", "4", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyAblationsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run([]string{"-exp", "ablations", "-tiny", "-warmup", "2", "-requests", "4", "-reps", "2", "-parallel", "4", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run([]string{"-exp", "hopdist", "-warmup", "3", "-requests", "5", "-q", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithFrozenClock pins the injectable wall clock and checks the
// total-wall-time line is computed from it (0s when frozen).
func TestRunWithFrozenClock(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	old := wallClock
	wallClock = clock.Fixed{T: time.Unix(1700000000, 0)}
	defer func() { wallClock = old }()

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	runErr := run([]string{"-exp", "skew", "-warmup", "2", "-requests", "3", "-q"})
	os.Stderr = oldStderr
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(string(out), "total wall time: 0s") {
		t.Errorf("frozen clock did not zero the wall-time line:\n%s", out)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(out)
}

// TestRunResume drives -resume end to end: a journaled run, a second run
// against the completed journal (all cells replayed from disk), and a
// meta-mismatch rejection when the flags change.
func TestRunResume(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-exp", "skew", "-tiny", "-warmup", "2", "-requests", "4", "-reps", "2", "-q", "-resume", dir}
	first := captureStdout(t, func() error { return run(args) })
	second := captureStdout(t, func() error { return run(args) })
	if first != second {
		t.Errorf("resumed output differs from original:\n%s\nvs\n%s", first, second)
	}
	bad := []string{"-exp", "skew", "-tiny", "-warmup", "2", "-requests", "5", "-reps", "2", "-q", "-resume", dir}
	if err := run(bad); err == nil || !strings.Contains(err.Error(), "meta mismatch") {
		t.Errorf("changed flags against the same journal not refused: %v", err)
	}
}
