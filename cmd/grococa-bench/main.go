// Command grococa-bench regenerates the paper's evaluation tables: one
// parameter sweep per figure (Figures 2–8), each comparing SC, COCA and
// GroCoca on access latency, server request ratio, local/global cache hit
// ratios, and power per global cache hit, plus the GroCoca ablation suite.
//
// Examples:
//
//	grococa-bench -exp all                 # every figure (long)
//	grococa-bench -exp cachesize           # Fig 2 only
//	grococa-bench -exp ablations           # design-choice ablations
//	grococa-bench -exp clients -warmup 150 -requests 250   # paper scale
//	grococa-bench -exp skew -reps 8 -parallel 0            # mean±sd over 8 replications,
//	                                                       # all cells fanned out to all cores
//	grococa-bench -exp cachesize -schemes grococa,popularity,hintlru
//	                                       # compare extension schemes on Fig 2's sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resilience"
)

// wallClock is the injectable wall-time source; command tests may freeze
// it with clock.Fixed.
var wallClock clock.Clock = clock.System{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grococa-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grococa-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all, ablations, extensions, or one of cachesize, skew, accessrange, groupsize, updaterate, clients, disconnect, servicearea, hopdist")
	seed := fs.Int64("seed", 1, "random seed")
	warmup := fs.Int("warmup", 0, "override warm-up requests per host (0 = default)")
	requests := fs.Int("requests", 0, "override measured requests per host (0 = default)")
	reps := fs.Int("reps", 1, "replications per sweep cell (deterministically derived seeds; > 1 adds mean±sd columns)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	tiny := fs.Bool("tiny", false, "shrink the scenario for smoke runs (8 clients, 400 items)")
	brute := fs.Bool("brute", false, "disable the medium's spatial index and use pairwise O(N^2) reachability scans (A/B verification; results are byte-identical)")
	resil := fs.Bool("resilience", false, "run every sweep cell under the default resilience policy (retry budgets, MSS-link breaker, hedging, serve-stale)")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	csv := fs.Bool("csv", false, "emit CSV rows instead of aligned tables")
	resume := fs.String("resume", "", "journal completed cells in this directory and resume an interrupted run from it (output stays byte-identical)")
	schemesFlag := fs.String("schemes", "",
		"comma-separated scheme columns ("+strings.Join(core.SchemeFlags(), ", ")+"); empty keeps each experiment's default trio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}
	var schemes []core.Scheme
	if *schemesFlag != "" {
		for _, name := range strings.Split(*schemesFlag, ",") {
			s, err := core.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			schemes = append(schemes, s)
		}
	}
	emit := func(e experiments.Experiment, points []experiments.Point) {
		if *csv {
			fmt.Print(e.CSV(points))
		} else {
			fmt.Println(e.Table(points))
		}
	}

	opts := experiments.Options{
		Seed:             *seed,
		WarmupRequests:   *warmup,
		MeasuredRequests: *requests,
		Replications:     *reps,
		Workers:          *parallel,
	}
	if *tiny {
		base := core.DefaultConfig()
		base.NumClients = 8
		base.NData = 400
		base.AccessRange = 80
		base.CacheSize = 15
		opts.Base = &base
		if *warmup == 0 {
			opts.WarmupRequests = 4
		}
		if *requests == 0 {
			opts.MeasuredRequests = 8
		}
	}
	if *brute {
		if opts.Base == nil {
			base := core.DefaultConfig()
			opts.Base = &base
		}
		opts.Base.BruteForceReachability = true
	}
	if *resil {
		if opts.Base == nil {
			base := core.DefaultConfig()
			opts.Base = &base
		}
		opts.Base.Resilience = resilience.DefaultPolicy()
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	if *resume != "" {
		// The meta record binds the journal to every flag that shapes the
		// result set, so a resume with different parameters is refused
		// instead of silently mixing runs.
		meta := fmt.Sprintf("grococa-bench exp=%s seed=%d warmup=%d requests=%d reps=%d tiny=%v brute=%v resilience=%v schemes=%s",
			*exp, *seed, *warmup, *requests, *reps, *tiny, *brute, *resil, *schemesFlag)
		jr, err := checkpoint.OpenJournal(*resume, []byte(meta))
		if err != nil {
			return err
		}
		defer func() { _ = jr.Close() }()
		opts.Journal = jr
	}

	runOne := func(e experiments.Experiment) error {
		if schemes != nil {
			e.Schemes = schemes
		}
		points, err := e.Run(opts)
		if err != nil {
			return err
		}
		emit(e, points)
		return nil
	}

	start := wallClock.Now()
	switch *exp {
	case "all":
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				return err
			}
		}
		if err := runAblations(opts); err != nil {
			return err
		}
	case "extensions":
		for _, e := range experiments.Extensions() {
			if err := runOne(e); err != nil {
				return err
			}
		}
	case "ablations":
		if err := runAblations(opts); err != nil {
			return err
		}
	default:
		e, ok := experiments.LookupAny(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		if err := runOne(e); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", clock.Since(wallClock, start).Round(time.Second))
	return nil
}

func runAblations(opts experiments.Options) error {
	abls, results, err := experiments.RunAblations(opts)
	if err != nil {
		return err
	}
	fmt.Println(experiments.AblationTable(abls, results))
	return nil
}
