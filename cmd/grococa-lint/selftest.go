package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/multichecker"
)

// mutation is one injected defect: a source-overlay edit of a real package
// that exactly one contract analyzer must flag. The edits are in-memory
// only (loader.LoadWithOverlay); the working tree is never modified.
type mutation struct {
	analyzer *analysis.Analyzer
	// pattern is the go-list pattern of the package to mutate.
	pattern string
	// file is the basename of the file the edit applies to.
	file string
	// describe names the injected defect in the selftest report.
	describe string
	// mutate edits the file's source. It must fail loudly when its anchor
	// has drifted, so a stale selftest can never pass vacuously.
	mutate func(src []byte) ([]byte, error)
}

// insertAfter splices insert directly after the first occurrence of anchor.
func insertAfter(src []byte, anchor, insert string) ([]byte, error) {
	i := bytes.Index(src, []byte(anchor))
	if i < 0 {
		return nil, fmt.Errorf("selftest anchor %q not found; update the mutation", anchor)
	}
	at := i + len(anchor)
	out := make([]byte, 0, len(src)+len(insert))
	out = append(out, src[:at]...)
	out = append(out, insert...)
	out = append(out, src[at:]...)
	return out, nil
}

// appendSource appends decls to the end of the file.
func appendSource(src []byte, decls string) ([]byte, error) {
	out := append([]byte{}, src...)
	out = append(out, '\n')
	out = append(out, decls...)
	return out, nil
}

// mutations returns the per-analyzer injected defects, mirroring the chaos
// engine's -selftest: each one is a realistic regression — a field added
// without checkpoint coverage, an unkeyed schedule, a silent connectivity
// flip, a fresh allocation on a hot path — that the matching analyzer must
// catch.
func mutations() []mutation {
	return []mutation{
		{
			analyzer: analyzerByName("snapshotdrift"),
			pattern:  "repro/internal/stats",
			file:     "stats.go",
			describe: "serializable field added to stats.Welford without State/Restore coverage",
			mutate: func(src []byte) ([]byte, error) {
				return insertAfter(src, "type Welford struct {",
					"\n\tlintSelftestDrift float64")
			},
		},
		{
			analyzer: analyzerByName("keyedsched"),
			pattern:  "repro/internal/client",
			file:     "host.go",
			describe: "unkeyed Kernel.Schedule call added to the snapshot-capable client package",
			mutate: func(src []byte) ([]byte, error) {
				return appendSource(src,
					"func (h *Host) lintSelftestUnkeyed() { h.k.Schedule(0, func() {}) }\n")
			},
		},
		{
			analyzer: analyzerByName("epochsync"),
			pattern:  "repro/internal/client",
			file:     "host.go",
			describe: "write to Host.connected without a ConnectivityChanged notification",
			mutate: func(src []byte) ([]byte, error) {
				return appendSource(src,
					"func (h *Host) lintSelftestSilentFlip() { h.connected = !h.connected }\n")
			},
		},
		{
			analyzer: analyzerByName("hotalloc"),
			pattern:  "repro/internal/geo",
			file:     "grid.go",
			describe: "unsized-append growth added to a //hot:-annotated grid function",
			mutate: func(src []byte) ([]byte, error) {
				return appendSource(src, `//hot:selftest-injected allocation
func (g *Grid) lintSelftestHotAlloc(n int) []GridID {
	var out []GridID
	for i := 0; i < n; i++ {
		out = append(out, GridID(i))
	}
	return out
}
`)
			},
		},
	}
}

// analyzerByName resolves a suite analyzer; unknown names panic, which can
// only happen if the mutation table drifts from the suite.
func analyzerByName(name string) *analysis.Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	panic("selftest names unknown analyzer " + name)
}

// analyzeWithOverlay loads patterns (with an optional in-memory source
// overlay) and runs the given analyzers.
func analyzeWithOverlay(overlay map[string][]byte, patterns []string, as []*analysis.Analyzer) ([]multichecker.Finding, []multichecker.Suppression, error) {
	pkgs, err := loader.LoadWithOverlay(overlay, patterns...)
	if err != nil {
		return nil, nil, err
	}
	return multichecker.AnalyzeAll(pkgs, as)
}

// runSelftest applies each injected defect and requires the matching
// analyzer to flag it. Exit code 1 means every defect was caught (the
// expected outcome — the caller asserts this run fails, exactly like the
// chaos -selftest); any missed defect is a driver error (exit 2).
func runSelftest(w io.Writer) (int, error) {
	muts := mutations()
	var missed []string
	for _, m := range muts {
		caught, n, err := runOneMutation(m)
		if err != nil {
			return 2, fmt.Errorf("selftest %s: %v", m.analyzer.Name, err)
		}
		if caught {
			if _, err := fmt.Fprintf(w, "selftest %s: caught — %d finding(s) for %s\n", m.analyzer.Name, n, m.describe); err != nil {
				return 2, err
			}
		} else {
			if _, err := fmt.Fprintf(w, "selftest %s: MISSED — %s went undetected\n", m.analyzer.Name, m.describe); err != nil {
				return 2, err
			}
			missed = append(missed, m.analyzer.Name)
		}
	}
	if len(missed) > 0 {
		return 2, fmt.Errorf("injected defects went undetected: %v", missed)
	}
	if _, err := fmt.Fprintf(w, "selftest: all %d injected defects caught; exiting nonzero as proof\n", len(muts)); err != nil {
		return 2, err
	}
	return 1, nil
}

// runOneMutation applies one overlay edit and runs only the target
// analyzer over the mutated package, counting its findings.
func runOneMutation(m mutation) (caught bool, findings int, err error) {
	// Locate the target file through a clean load, so the overlay key is
	// the same absolute path the loader will use.
	pkgs, err := loader.Load(m.pattern)
	if err != nil {
		return false, 0, err
	}
	var target string
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if filepath.Base(name) == m.file {
				target = name
			}
		}
	}
	if target == "" {
		return false, 0, fmt.Errorf("file %s not found in %s", m.file, m.pattern)
	}
	src, err := os.ReadFile(target)
	if err != nil {
		return false, 0, err
	}
	mutated, err := m.mutate(src)
	if err != nil {
		return false, 0, err
	}
	found, _, err := analyzeWithOverlay(map[string][]byte{target: mutated}, []string{m.pattern}, []*analysis.Analyzer{m.analyzer})
	if err != nil {
		return false, 0, err
	}
	n := 0
	for _, f := range found {
		if f.Analyzer == m.analyzer.Name {
			n++
		}
	}
	return n > 0, n, nil
}
