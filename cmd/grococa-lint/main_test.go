package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out bytes.Buffer
	code, err := run(&out, []string{"-list"})
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"errdrop", "mapiterorder", "rngstream", "wallclock"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks from source in -short mode")
	}
	var out bytes.Buffer
	code, err := run(&out, []string{"repro/internal/lint/analysis"})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit %d on clean package; findings:\n%s", code, out.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out bytes.Buffer
	if code, _ := run(&out, []string{"-bogus"}); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

func TestBadPatternErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(&out, []string{"./no/such/dir/..."}); err == nil || code != 2 {
		t.Errorf("bad pattern: exit %d, err %v; want 2 with error", code, err)
	}
}
