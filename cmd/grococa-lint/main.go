// Command grococa-lint is the determinism lint suite: a multichecker over
// the custom analyzers that enforce this repo's bit-identical
// reproducibility rules (DESIGN.md "Determinism rules").
//
//	grococa-lint ./...            # what make tier1 runs
//	grococa-lint ./internal/core
//
// Analyzers:
//
//	mapiterorder  no order-sensitive work inside range-over-map
//	rngstream     math/rand only inside internal/sim's named-stream RNG
//	wallclock     no wall-clock reads in simulation packages
//	errdrop       no silently discarded error returns
//
// A finding is suppressed only by an annotated line:
//
//	//lint:ignore <analyzer> <non-empty reason>
//
// The exit status is 1 when any unsuppressed finding remains.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint/analysis"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/mapiterorder"
	"repro/internal/lint/multichecker"
	"repro/internal/lint/rngstream"
	"repro/internal/lint/wallclock"
)

// analyzers is the suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	errdrop.Analyzer,
	mapiterorder.Analyzer,
	rngstream.Analyzer,
	wallclock.Analyzer,
}

func main() {
	code, err := run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the suite and returns the process exit code: 0 clean,
// 1 when findings remain.
func run(w io.Writer, args []string) (int, error) {
	fs := flag.NewFlagSet("grococa-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range analyzers {
			if _, err := fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc); err != nil {
				return 2, err
			}
		}
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := multichecker.Run(w, analyzers, patterns...)
	if err != nil {
		return 2, err
	}
	if n > 0 {
		if _, err := fmt.Fprintf(w, "%d determinism lint finding(s)\n", n); err != nil {
			return 2, err
		}
		return 1, nil
	}
	return 0, nil
}
