// Command grococa-lint is the contract-analysis suite: a multichecker over
// the custom analyzers that enforce this repo's bit-identical
// reproducibility rules and cross-package runtime contracts (DESIGN.md
// "Static analysis").
//
//	grococa-lint ./...                  # what make tier1 runs
//	grococa-lint -json ./...            # machine-readable findings artifact
//	grococa-lint -max-suppress 0 ./...  # suppression budget gate
//	grococa-lint -selftest              # prove each contract analyzer catches
//	                                    # an injected defect (must exit nonzero)
//
// Determinism analyzers (PR 2):
//
//	mapiterorder  no order-sensitive work inside range-over-map
//	rngstream     math/rand only inside internal/sim's named-stream RNG
//	wallclock     no wall-clock reads in simulation packages
//	errdrop       no silently discarded error returns
//
// Contract analyzers (type-aware, this PR):
//
//	snapshotdrift fields missing from State/Restore checkpoint coverage
//	keyedsched    unkeyed Kernel.Schedule/At in snapshot-capable packages
//	epochsync     Connected()-affecting writes without ConnectivityChanged
//	hotalloc      allocation patterns in //hot:-annotated functions
//
// A finding is suppressed only by an annotated line:
//
//	//lint:ignore <analyzer> <non-empty reason>
//
// Every suppression that fires is inventoried in the output (and in -json),
// and -max-suppress N fails the run when more than N directives fire — the
// CI budget gate that keeps suppressions from accumulating silently.
//
// The exit status is 1 when any unsuppressed finding remains or the
// suppression budget is exceeded, 2 on driver errors. In -selftest mode the
// tool injects one in-memory defect per contract analyzer (via a source
// overlay; the working tree is never touched) and exits 1 when every
// defect is caught — mirroring the chaos -selftest convention where the
// seeded-bug run must fail — or 2 when any injected defect goes undetected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint/analysis"
	"repro/internal/lint/epochsync"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/keyedsched"
	"repro/internal/lint/mapiterorder"
	"repro/internal/lint/multichecker"
	"repro/internal/lint/rngstream"
	"repro/internal/lint/snapshotdrift"
	"repro/internal/lint/wallclock"
)

// analyzers is the suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	epochsync.Analyzer,
	errdrop.Analyzer,
	hotalloc.Analyzer,
	keyedsched.Analyzer,
	mapiterorder.Analyzer,
	rngstream.Analyzer,
	snapshotdrift.Analyzer,
	wallclock.Analyzer,
}

func main() {
	code, err := run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// jsonFinding is one finding in the -json artifact.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSuppression is one fired //lint:ignore directive in the -json
// artifact: position, analyzer, mandatory reason, and how many diagnostics
// it silenced.
type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Count    int    `json:"count"`
}

// jsonReport is the complete machine-readable output of one run.
type jsonReport struct {
	Findings     []jsonFinding        `json:"findings"`
	Suppressions []jsonSuppression    `json:"suppressions"`
	ByAnalyzer   map[string]jsonTally `json:"by_analyzer"`
	Summary      jsonSummary          `json:"summary"`
}

// jsonTally counts one analyzer's findings and fired suppressions.
type jsonTally struct {
	Findings     int `json:"findings"`
	Suppressions int `json:"suppressions"`
}

// jsonSummary is the roll-up the CI budget gate reads.
type jsonSummary struct {
	Findings          int  `json:"findings"`
	Suppressions      int  `json:"suppressions"`
	SuppressionBudget int  `json:"suppression_budget"`
	BudgetExceeded    bool `json:"budget_exceeded"`
}

// run executes the suite and returns the process exit code: 0 clean,
// 1 when findings remain or the suppression budget is exceeded.
func run(w io.Writer, args []string) (int, error) {
	fs := flag.NewFlagSet("grococa-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings and suppressions as JSON")
	maxSuppress := fs.Int("max-suppress", -1, "fail when more than this many suppressions fire (-1 disables the gate)")
	selftest := fs.Bool("selftest", false, "inject one in-memory defect per contract analyzer; exits 1 when all are caught")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range analyzers {
			if _, err := fmt.Fprintf(w, "%-14s %s\n", a.Name, a.Doc); err != nil {
				return 2, err
			}
		}
		return 0, nil
	}
	if *selftest {
		return runSelftest(w)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, suppressions, err := analyze(patterns)
	if err != nil {
		return 2, err
	}
	overBudget := *maxSuppress >= 0 && len(suppressions) > *maxSuppress

	if *asJSON {
		report := jsonReport{
			Findings:     []jsonFinding{},
			Suppressions: []jsonSuppression{},
			ByAnalyzer:   make(map[string]jsonTally),
			Summary: jsonSummary{
				Findings:          len(findings),
				Suppressions:      len(suppressions),
				SuppressionBudget: *maxSuppress,
				BudgetExceeded:    overBudget,
			},
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
			t := report.ByAnalyzer[f.Analyzer]
			t.Findings++
			report.ByAnalyzer[f.Analyzer] = t
		}
		for _, s := range suppressions {
			report.Suppressions = append(report.Suppressions, jsonSuppression{
				File: s.Pos.Filename, Line: s.Pos.Line,
				Analyzer: s.Analyzer, Reason: s.Reason, Count: s.Count,
			})
			t := report.ByAnalyzer[s.Analyzer]
			t.Suppressions++
			report.ByAnalyzer[s.Analyzer] = t
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			if _, err := fmt.Fprintln(w, f); err != nil {
				return 2, err
			}
		}
		if len(suppressions) > 0 {
			if _, err := fmt.Fprintf(w, "suppression budget report (%d fired):\n", len(suppressions)); err != nil {
				return 2, err
			}
			for _, s := range suppressions {
				if _, err := fmt.Fprintf(w, "  %s\n", s); err != nil {
					return 2, err
				}
			}
		}
		if len(findings) > 0 {
			if _, err := fmt.Fprintf(w, "%d lint finding(s)\n", len(findings)); err != nil {
				return 2, err
			}
		}
		if overBudget {
			if _, err := fmt.Fprintf(w, "suppression budget exceeded: %d fired > %d allowed\n", len(suppressions), *maxSuppress); err != nil {
				return 2, err
			}
		}
	}
	if len(findings) > 0 || overBudget {
		return 1, nil
	}
	return 0, nil
}

// analyze loads the patterns and runs the full suite, returning findings
// and fired suppressions in deterministic order.
func analyze(patterns []string) ([]multichecker.Finding, []multichecker.Suppression, error) {
	return analyzeWithOverlay(nil, patterns, analyzers)
}
