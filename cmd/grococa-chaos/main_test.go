package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"-seeds", "0"},
		{"-campaign", "bogus"},
		{"-scheme", "bogus"},
	}
	for _, args := range cases {
		if _, err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("list: code %d, err %v", code, err)
	}
	for _, name := range []string{"loss-ramp", "burst-storm", "outage-storm", "churn-wave", "blackout", "combined"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("catalog misses %s:\n%s", name, out.String())
		}
	}
}

// TestRunSingleCellClean drives the full path — campaign, auditor, table —
// for one cell and checks the clean exit code.
func TestRunSingleCellClean(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var out bytes.Buffer
	code, err := run([]string{"-campaign", "outage-storm", "-scheme", "grococa", "-seeds", "1", "-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean cell exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 runs, 1 clean, 0 violations") {
		t.Errorf("summary line missing:\n%s", out.String())
	}
}

// TestRunByteIdenticalAcrossParallel pins the acceptance requirement at
// the command level: identical stdout for -parallel 1 and 4.
func TestRunByteIdenticalAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	outputs := make([]string, 0, 2)
	for _, p := range []string{"1", "4"} {
		var out bytes.Buffer
		code, err := run([]string{"-campaign", "churn-wave", "-seeds", "2", "-parallel", p, "-v"}, &out)
		if err != nil || code != 0 {
			t.Fatalf("-parallel %s: code %d, err %v", p, code, err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("output differs across -parallel:\n--- 1 ---\n%s--- 4 ---\n%s", outputs[0], outputs[1])
	}
}

// TestRunSelfTestFails proves the detection chain through the command: the
// seeded TTL-corruption bug must produce a nonzero exit and violations
// whose repro line carries -selftest.
func TestRunSelfTestFails(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var out bytes.Buffer
	code, err := run([]string{"-selftest", "-campaign", "loss-ramp", "-scheme", "coca", "-seeds", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("self-test exited clean — the auditor is blind:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "repro: go run ./cmd/grococa-chaos") ||
		!strings.Contains(out.String(), "-selftest") {
		t.Errorf("violations miss the repro command:\n%s", out.String())
	}
}
