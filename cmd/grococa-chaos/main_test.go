package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestMain routes harness-kill child re-execs (childEnv set) into the
// command before the test framework parses any flags.
func TestMain(m *testing.M) {
	childMain()
	os.Exit(m.Run())
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"-seeds", "0"},
		{"-campaign", "bogus"},
		{"-scheme", "bogus"},
	}
	for _, args := range cases {
		if _, err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("list: code %d, err %v", code, err)
	}
	for _, name := range []string{"loss-ramp", "burst-storm", "outage-storm", "churn-wave", "blackout", "combined"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("catalog misses %s:\n%s", name, out.String())
		}
	}
}

// TestRunSingleCellClean drives the full path — campaign, auditor, table —
// for one cell and checks the clean exit code.
func TestRunSingleCellClean(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var out bytes.Buffer
	code, err := run([]string{"-campaign", "outage-storm", "-scheme", "grococa", "-seeds", "1", "-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean cell exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 runs, 1 clean, 0 violations") {
		t.Errorf("summary line missing:\n%s", out.String())
	}
}

// TestRunByteIdenticalAcrossParallel pins the acceptance requirement at
// the command level: identical stdout for -parallel 1 and 4.
func TestRunByteIdenticalAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	outputs := make([]string, 0, 2)
	for _, p := range []string{"1", "4"} {
		var out bytes.Buffer
		code, err := run([]string{"-campaign", "churn-wave", "-seeds", "2", "-parallel", p, "-v"}, &out)
		if err != nil || code != 0 {
			t.Fatalf("-parallel %s: code %d, err %v", p, code, err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("output differs across -parallel:\n--- 1 ---\n%s--- 4 ---\n%s", outputs[0], outputs[1])
	}
}

// TestRunResume checks the journaled path end to end: a matrix run twice
// against the same journal directory prints byte-identical reports (the
// second run replays entirely from the journal), and a resume with
// different flags is refused via the meta record.
func TestRunResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-campaign", "churn-wave", "-scheme", "sc", "-seeds", "2", "-resume", dir}
	outputs := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		var out bytes.Buffer
		code, err := run(args, &out)
		if err != nil || code != 0 {
			t.Fatalf("run %d: code %d, err %v", i, code, err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("journaled rerun differs:\n--- first ---\n%s--- second ---\n%s", outputs[0], outputs[1])
	}
	if _, err := run([]string{"-campaign", "churn-wave", "-scheme", "sc", "-seeds", "3", "-resume", dir}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "meta mismatch") {
		t.Errorf("resume with changed flags accepted: %v", err)
	}
}

// TestHarnessKill drives the -selftest-kill mode: a child process is
// SIGKILLed mid-matrix and the resumed report must match the golden.
func TestHarnessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var out bytes.Buffer
	code, err := run([]string{"-selftest-kill", "-killdir", t.TempDir(),
		"-campaign", "outage-storm", "-scheme", "grococa", "-seeds", "3", "-parallel", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("harness-kill self-test exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "harness-kill self-test ok") {
		t.Errorf("verdict line missing:\n%s", out.String())
	}
}

// TestKillSelfTestRejectsBadSetup pins the -selftest-kill preconditions.
func TestKillSelfTestRejectsBadSetup(t *testing.T) {
	if _, err := run([]string{"-selftest-kill"}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-killdir") {
		t.Errorf("missing -killdir accepted: %v", err)
	}
	if _, err := run([]string{"-selftest-kill", "-killdir", t.TempDir(),
		"-campaign", "blackout", "-scheme", "sc", "-seeds", "1"}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "at least 2 runs") {
		t.Errorf("single-run matrix accepted: %v", err)
	}
}

// TestRunSelfTestFails proves the detection chain through the command: the
// seeded TTL-corruption bug must produce a nonzero exit and violations
// whose repro line carries -selftest.
func TestRunSelfTestFails(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var out bytes.Buffer
	code, err := run([]string{"-selftest", "-campaign", "loss-ramp", "-scheme", "coca", "-seeds", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("self-test exited clean — the auditor is blind:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "repro: go run ./cmd/grococa-chaos") ||
		!strings.Contains(out.String(), "-selftest") {
		t.Errorf("violations miss the repro command:\n%s", out.String())
	}
}
