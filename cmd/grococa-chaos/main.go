// Command grococa-chaos runs seeded adversarial campaigns against the
// SC/COCA/GroCoca schemes under the online invariant auditor: loss ramps,
// Gilbert–Elliott burst storms, scheduled MSS blackouts, crash churn, and
// their combination. Every violation is printed with the one-line command
// that replays the exact offending run; the exit status is nonzero when
// any invariant was breached.
//
// Examples:
//
//	grococa-chaos -seeds 20                       # full matrix, 20 seeds per cell
//	grococa-chaos -campaign burst-storm -seeds 5  # one campaign, all schemes
//	grococa-chaos -campaign blackout -scheme coca -seed 1 -seed-index 3
//	                                              # replay one run (the repro shape)
//	grococa-chaos -selftest -seeds 1              # must FAIL: proves the auditor
//	                                              # catches a seeded protocol bug
//	grococa-chaos -list                           # campaign catalog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/core"
)

// wallClock is the injectable wall-time source; command tests may freeze
// it with clock.Fixed.
var wallClock clock.Clock = clock.System{}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-chaos:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the command and returns the process exit code: 0 for a
// clean matrix, 2 when violations were found.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("grococa-chaos", flag.ContinueOnError)
	seeds := fs.Int("seeds", 5, "seed indices per (campaign, scheme) cell")
	seed := fs.Int64("seed", 1, "base seed of the campaign matrix")
	seedIndex := fs.Int("seed-index", -1, "replay exactly this seed index (repro mode; -1 = all)")
	campaign := fs.String("campaign", "", "run only this campaign (default: all; see -list)")
	scheme := fs.String("scheme", "", "run only this scheme: sc, coca or grococa (default: all)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	slo := fs.Duration("slo", 0, "recovery SLO: flag episodes not recovered within this duration (0 = report-only)")
	selfTest := fs.Bool("selftest", false, "inject a deliberate TTL-corruption bug; the run must report violations")
	list := fs.Bool("list", false, "print the campaign catalog and exit")
	verbose := fs.Bool("v", false, "print one line per run instead of only the cell table")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *list {
		for _, c := range chaos.Campaigns() {
			_, _ = fmt.Fprintf(out, "%-12s %s\n", c.Name, c.Description)
		}
		return 0, nil
	}
	if *seeds < 1 {
		return 1, fmt.Errorf("-seeds %d must be at least 1", *seeds)
	}

	opts := chaos.Options{
		BaseSeed: *seed,
		Seeds:    *seeds,
		Workers:  *parallel,
		SLO:      *slo,
		SelfTest: *selfTest,
	}
	if *seedIndex >= 0 {
		opts.Replay = true
		opts.SeedIndex = *seedIndex
	}
	if *campaign != "" {
		c, ok := chaos.CampaignByName(*campaign)
		if !ok {
			return 1, fmt.Errorf("unknown campaign %q (see -list)", *campaign)
		}
		opts.Campaigns = []chaos.Campaign{c}
	}
	if *scheme != "" {
		s, err := parseScheme(*scheme)
		if err != nil {
			return 1, err
		}
		opts.Schemes = []core.Scheme{s}
	}
	if *verbose {
		opts.OnResult = func(r chaos.RunResult) {
			status := "clean"
			if n := r.Report.TotalViolations(); n > 0 {
				status = fmt.Sprintf("%d VIOLATIONS", n)
			} else if !r.Results.Completed {
				status = "horizon-expired"
			}
			_, _ = fmt.Fprintf(out, "%-12s %-8s seed-index=%-3d seed=%-20d %s\n",
				r.Campaign, r.Scheme, r.SeedIndex, r.Seed, status)
		}
	}

	start := wallClock.Now()
	sum, err := chaos.Run(opts)
	if err != nil {
		return 1, err
	}
	printSummary(out, sum)
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", clock.Since(wallClock, start).Round(time.Millisecond))
	if !sum.Clean() {
		return 2, nil
	}
	return 0, nil
}

// parseScheme maps the flag spelling to a scheme.
func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "sc":
		return core.SchemeSC, nil
	case "coca":
		return core.SchemeCOCA, nil
	case "grococa":
		return core.SchemeGroCoca, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want sc, coca or grococa)", s)
	}
}

// printSummary renders the cell table, then every violation with its repro
// command. The output depends only on the summary, which is canonical —
// byte-identical across -parallel values.
func printSummary(out io.Writer, sum chaos.Summary) {
	_, _ = fmt.Fprintf(out, "%-12s %-8s %5s %8s %5s %7s %10s %10s %12s\n",
		"campaign", "scheme", "runs", "expired", "viol", "stale", "recovered", "unrecov", "mean-recov")
	for _, r := range sum.Rows {
		_, _ = fmt.Fprintf(out, "%-12s %-8s %5d %8d %5d %6.1f%% %10d %10d %12v\n",
			r.Campaign, r.Scheme, r.Runs, r.Expired, r.Violations, 100*r.StaleRatio,
			r.Recovered, r.Unrecovered, r.MeanRecovery.Round(time.Millisecond))
	}
	_, _ = fmt.Fprintf(out, "\n%d runs, %d clean, %d violations",
		sum.Runs, sum.CleanRuns, len(sum.Violations)+sum.DroppedViolations)
	if sum.DroppedViolations > 0 {
		_, _ = fmt.Fprintf(out, " (%d past the per-run cap)", sum.DroppedViolations)
	}
	_, _ = fmt.Fprintln(out)
	for _, v := range sum.Violations {
		_, _ = fmt.Fprintln(out, " ", v)
	}
}
