// Command grococa-chaos runs seeded adversarial campaigns against the
// caching schemes (the SC/COCA/GroCoca matrix by default; any registered
// scheme via -scheme) under the online invariant auditor: loss ramps,
// Gilbert–Elliott burst storms, scheduled MSS blackouts, crash churn, and
// their combination. Every violation is printed with the one-line command
// that replays the exact offending run; the exit status is nonzero when
// any invariant was breached.
//
// Examples:
//
//	grococa-chaos -seeds 20                       # full matrix, 20 seeds per cell
//	grococa-chaos -campaign burst-storm -seeds 5  # one campaign, all schemes
//	grococa-chaos -campaign blackout -scheme coca -seed 1 -seed-index 3
//	                                              # replay one run (the repro shape)
//	grococa-chaos -selftest -seeds 1              # must FAIL: proves the auditor
//	                                              # catches a seeded protocol bug
//	grococa-chaos -list                           # campaign catalog
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/clock"
	"repro/internal/core"
)

// wallClock is the injectable wall-time source; command tests may freeze
// it with clock.Fixed.
var wallClock clock.Clock = clock.System{}

// childEnv carries the argument vector of a harness-kill child process,
// joined by the unit separator. Re-execing through an environment variable
// (instead of argv) lets the same code path work when the running binary is
// the test binary, whose own flag set would reject chaos flags.
const childEnv = "GROCOCA_CHAOS_CHILD"

func main() {
	childMain()
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-chaos:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// childMain runs the chaos command with the argument vector from childEnv
// and exits, never returning; with childEnv unset it is a no-op. Both
// main() and TestMain call it, so a harness-kill parent can re-exec
// whichever binary it is running as.
func childMain() {
	v, ok := os.LookupEnv(childEnv)
	if !ok {
		return
	}
	code, err := run(strings.Split(v, "\x1f"), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grococa-chaos:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the command and returns the process exit code: 0 for a
// clean matrix, 2 when violations were found.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("grococa-chaos", flag.ContinueOnError)
	seeds := fs.Int("seeds", 5, "seed indices per (campaign, scheme) cell")
	seed := fs.Int64("seed", 1, "base seed of the campaign matrix")
	seedIndex := fs.Int("seed-index", -1, "replay exactly this seed index (repro mode; -1 = all)")
	campaign := fs.String("campaign", "", "run only this campaign (default: all; see -list)")
	scheme := fs.String("scheme", "",
		"run only this scheme: "+strings.Join(core.SchemeFlags(), ", ")+" (default: the sc/coca/grococa matrix)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	slo := fs.Duration("slo", 0, "recovery SLO: flag episodes not recovered within this duration (0 = report-only)")
	selfTest := fs.Bool("selftest", false, "inject a deliberate TTL-corruption bug; the run must report violations")
	resume := fs.String("resume", "", "journal completed runs in this directory and resume an interrupted matrix from it (output stays byte-identical)")
	selfTestKill := fs.Bool("selftest-kill", false, "harness-kill self-test: SIGKILL a child mid-matrix, resume it, and require the report to match a never-killed run")
	killDir := fs.String("killdir", "", "scratch directory for -selftest-kill (journal, child log, and mismatch artifacts)")
	list := fs.Bool("list", false, "print the campaign catalog and exit")
	verbose := fs.Bool("v", false, "print one line per run instead of only the cell table")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *list {
		for _, c := range chaos.Campaigns() {
			_, _ = fmt.Fprintf(out, "%-12s %s\n", c.Name, c.Description)
		}
		return 0, nil
	}
	if *seeds < 1 {
		return 1, fmt.Errorf("-seeds %d must be at least 1", *seeds)
	}
	if *selfTestKill {
		matrix := []string{"-seed", strconv.FormatInt(*seed, 10), "-seeds", strconv.Itoa(*seeds)}
		if *seedIndex >= 0 {
			matrix = append(matrix, "-seed-index", strconv.Itoa(*seedIndex))
		}
		if *campaign != "" {
			matrix = append(matrix, "-campaign", *campaign)
		}
		if *scheme != "" {
			matrix = append(matrix, "-scheme", *scheme)
		}
		if *parallel > 0 {
			matrix = append(matrix, "-parallel", strconv.Itoa(*parallel))
		}
		if *slo > 0 {
			matrix = append(matrix, "-slo", slo.String())
		}
		if *selfTest {
			matrix = append(matrix, "-selftest")
		}
		if *verbose {
			matrix = append(matrix, "-v")
		}
		total := totalRuns(*campaign, *scheme, *seeds, *seedIndex)
		return runKillSelfTest(matrix, total, *killDir, out)
	}

	opts := chaos.Options{
		BaseSeed: *seed,
		Seeds:    *seeds,
		Workers:  *parallel,
		SLO:      *slo,
		SelfTest: *selfTest,
	}
	if *seedIndex >= 0 {
		opts.Replay = true
		opts.SeedIndex = *seedIndex
	}
	if *campaign != "" {
		c, ok := chaos.CampaignByName(*campaign)
		if !ok {
			return 1, fmt.Errorf("unknown campaign %q (see -list)", *campaign)
		}
		opts.Campaigns = []chaos.Campaign{c}
	}
	if *scheme != "" {
		s, err := parseScheme(*scheme)
		if err != nil {
			return 1, err
		}
		opts.Schemes = []core.Scheme{s}
	}
	if *verbose {
		opts.OnResult = func(r chaos.RunResult) {
			status := "clean"
			if n := r.Report.TotalViolations(); n > 0 {
				status = fmt.Sprintf("%d VIOLATIONS", n)
			} else if !r.Results.Completed {
				status = "horizon-expired"
			}
			_, _ = fmt.Fprintf(out, "%-12s %-8s seed-index=%-3d seed=%-20d %s\n",
				r.Campaign, r.Scheme, r.SeedIndex, r.Seed, status)
		}
	}

	if *resume != "" {
		// The meta record binds the journal to every flag that shapes the
		// result set (-v and -parallel only shape rendering and scheduling),
		// so a resume with different parameters is refused instead of
		// silently mixing runs.
		meta := fmt.Sprintf("grococa-chaos seed=%d seeds=%d seed-index=%d campaign=%s scheme=%s slo=%v selftest=%v",
			*seed, *seeds, *seedIndex, *campaign, *scheme, *slo, *selfTest)
		jr, err := checkpoint.OpenJournal(*resume, []byte(meta))
		if err != nil {
			return 1, err
		}
		defer func() { _ = jr.Close() }()
		opts.Journal = jr
	}

	start := wallClock.Now()
	sum, err := chaos.Run(opts)
	if err != nil {
		return 1, err
	}
	printSummary(out, sum)
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", clock.Since(wallClock, start).Round(time.Millisecond))
	if !sum.Clean() {
		return 2, nil
	}
	return 0, nil
}

// parseScheme maps the flag spelling to a scheme via the registry.
func parseScheme(s string) (core.Scheme, error) {
	return core.ParseScheme(s)
}

// totalRuns computes the size of the campaign matrix the flags select.
func totalRuns(campaign, scheme string, seeds, seedIndex int) int {
	campaigns := len(chaos.Campaigns())
	if campaign != "" {
		campaigns = 1
	}
	// The default matrix is the paper's trio (chaos.Options.withDefaults),
	// not the full registry.
	schemes := 3
	if scheme != "" {
		schemes = 1
	}
	if seedIndex >= 0 {
		seeds = 1
	}
	return campaigns * schemes * seeds
}

// runKillSelfTest proves crash-resumability end to end with a real crash:
// it runs the selected matrix uninterrupted (the golden report), re-execs
// itself as a child running the same matrix against a journal, SIGKILLs the
// child once at least one run is durably recorded but before the matrix
// completes, resumes from the surviving journal, and requires the resumed
// report to match the golden byte for byte. On mismatch both reports are
// left in killDir for inspection.
func runKillSelfTest(matrix []string, total int, killDir string, out io.Writer) (int, error) {
	if killDir == "" {
		return 1, fmt.Errorf("-selftest-kill requires -killdir")
	}
	if total < 2 {
		return 1, fmt.Errorf("-selftest-kill needs a matrix of at least 2 runs to kill mid-way, got %d", total)
	}
	if err := os.MkdirAll(killDir, 0o755); err != nil {
		return 1, err
	}
	journalDir := filepath.Join(killDir, "journal")
	if err := os.RemoveAll(journalDir); err != nil {
		return 1, err
	}

	var golden bytes.Buffer
	goldenCode, err := run(matrix, &golden)
	if err != nil {
		return 1, fmt.Errorf("golden run: %w", err)
	}

	childArgs := append(append([]string{}, matrix...), "-resume", journalDir)
	exe, err := os.Executable()
	if err != nil {
		return 1, err
	}
	logF, err := os.Create(filepath.Join(killDir, "child.log"))
	if err != nil {
		return 1, err
	}
	defer func() { _ = logF.Close() }()
	child := exec.Command(exe)
	child.Env = append(os.Environ(), childEnv+"="+strings.Join(childArgs, "\x1f"))
	child.Stdout = logF
	child.Stderr = logF
	if err := child.Start(); err != nil {
		return 1, err
	}

	// Kill as soon as the first run is durably journaled: the child is then
	// mid-matrix (and almost certainly mid-run), which is exactly the crash
	// the resume path must survive.
	journalPath := filepath.Join(journalDir, "journal.gckj")
	deadline := time.Now().Add(10 * time.Minute)
	for {
		keys, err := checkpoint.InspectJournal(journalPath)
		if err == nil && len(keys) > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = child.Process.Kill()
			_ = child.Wait()
			return 1, fmt.Errorf("harness-kill: no journaled run within the deadline; see %s", logF.Name())
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = child.Process.Kill()
	_ = child.Wait()
	recorded := 0
	if keys, err := checkpoint.InspectJournal(journalPath); err == nil {
		recorded = len(keys)
	}
	if recorded >= total {
		return 1, fmt.Errorf("harness-kill: child finished all %d runs before the kill; enlarge the matrix", total)
	}

	var resumed bytes.Buffer
	resumedCode, err := run(childArgs, &resumed)
	if err != nil {
		return 1, fmt.Errorf("resumed run: %w", err)
	}
	if resumed.String() != golden.String() || resumedCode != goldenCode {
		_ = os.WriteFile(filepath.Join(killDir, "golden.txt"), golden.Bytes(), 0o644)
		_ = os.WriteFile(filepath.Join(killDir, "resumed.txt"), resumed.Bytes(), 0o644)
		return 1, fmt.Errorf("harness-kill: resumed report differs from the uninterrupted run (exit %d vs %d); artifacts in %s",
			resumedCode, goldenCode, killDir)
	}
	_, _ = fmt.Fprintf(out, "harness-kill self-test ok: child SIGKILLed after %d/%d journaled runs; resumed report byte-identical (exit %d)\n",
		recorded, total, goldenCode)
	return 0, nil
}

// printSummary renders the cell table, then every violation with its repro
// command. The output depends only on the summary, which is canonical —
// byte-identical across -parallel values.
func printSummary(out io.Writer, sum chaos.Summary) {
	_, _ = fmt.Fprintf(out, "%-12s %-8s %5s %8s %5s %7s %8s %6s %10s %10s %9s %12s\n",
		"campaign", "scheme", "runs", "expired", "viol", "stale", "degraded", "hedges", "recovered", "unrecov", "censored", "mean-recov")
	for _, r := range sum.Rows {
		_, _ = fmt.Fprintf(out, "%-12s %-8s %5d %8d %5d %6.1f%% %8d %6d %10d %10d %9d %12v\n",
			r.Campaign, r.Scheme, r.Runs, r.Expired, r.Violations, 100*r.StaleRatio,
			r.Degraded, r.Hedges, r.Recovered, r.Unrecovered, r.Censored, r.MeanRecovery.Round(time.Millisecond))
	}
	_, _ = fmt.Fprintf(out, "\n%d runs, %d clean, %d violations",
		sum.Runs, sum.CleanRuns, len(sum.Violations)+sum.DroppedViolations)
	if sum.DroppedViolations > 0 {
		_, _ = fmt.Fprintf(out, " (%d past the per-run cap)", sum.DroppedViolations)
	}
	_, _ = fmt.Fprintln(out)
	for _, v := range sum.Violations {
		_, _ = fmt.Fprintln(out, " ", v)
	}
}
