package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRendersMap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-clients", "10", "-requests", "20", "-cols", "40", "-rows", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "@") || !strings.Contains(s, "hosts") {
		t.Errorf("map output missing markers:\n%s", s)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-clients", "0"}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if err := run([]string{"-clients", "10", "-requests", "20", "-cols", "2"}, nil); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestRunOutputIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	args := []string{"-clients", "10", "-requests", "20", "-cols", "40", "-rows", "10", "-seed", "7"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed drew different maps:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "after ") {
		t.Errorf("summary line missing:\n%s", a.String())
	}
}

func TestRunDifferentSeedsDrawDifferentMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var a, b bytes.Buffer
	if err := run([]string{"-clients", "10", "-requests", "20", "-seed", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-clients", "10", "-requests", "20", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced byte-identical maps")
	}
}
