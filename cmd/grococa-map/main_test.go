package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRendersMap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-clients", "10", "-requests", "20", "-cols", "40", "-rows", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "@") || !strings.Contains(s, "hosts") {
		t.Errorf("map output missing markers:\n%s", s)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-clients", "0"}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if err := run([]string{"-clients", "10", "-requests", "20", "-cols", "2"}, nil); err == nil {
		t.Error("tiny grid accepted")
	}
}
