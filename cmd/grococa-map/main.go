// Command grococa-map runs a short GroCoca simulation and draws an ASCII
// snapshot of the final host positions: motion groups as letters, hosts
// currently inside a tightly-coupled group uppercase. A quick visual check
// that group mobility and TCG discovery behave as intended.
//
//	grococa-map -clients 40 -groupsize 5 -seconds 300
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grococa-map:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("grococa-map", flag.ContinueOnError)
	cfg := core.DefaultConfig()
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	fs.IntVar(&cfg.NumClients, "clients", 40, "number of mobile hosts")
	fs.IntVar(&cfg.GroupSize, "groupsize", cfg.GroupSize, "motion group size")
	requests := fs.Int("requests", 120, "requests per host before the snapshot")
	cols := fs.Int("cols", 72, "map width in characters")
	rows := fs.Int("rows", 24, "map height in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.Scheme = core.SchemeGroCoca
	cfg.NData = 2000
	cfg.AccessRange = 200
	cfg.CacheSize = 50
	cfg.WarmupRequests = *requests / 2
	cfg.MeasuredRequests = *requests - *requests/2

	s, err := core.New(cfg)
	if err != nil {
		return err
	}
	r, err := s.Run()
	if err != nil {
		return err
	}
	hosts := make([]report.MapHost, 0, len(s.Hosts()))
	now := r.SimTime
	for _, h := range s.Hosts() {
		pos := h.Position(now)
		hosts = append(hosts, report.MapHost{
			X:     pos.X,
			Y:     pos.Y,
			Group: int(h.ID()) / cfg.GroupSize,
			InTCG: h.TCGSize() > 0,
		})
	}
	chart, err := report.RenderMap(cfg.SpaceWidth, cfg.SpaceHeight, *cols, *rows, hosts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(stdout, chart); err != nil {
		return err
	}
	_, err = fmt.Fprintf(stdout, "after %v: %v\n", r.SimTime.Round(1e9), r)
	return err
}
