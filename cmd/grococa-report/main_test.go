package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `experiment,figure,cachesize,scheme,latency_ms,gch_ratio
cachesize,Fig 2,50,SC,368.87,0.0
cachesize,Fig 2,50,COCA,29.32,0.337
`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cachesize") || !strings.Contains(out.String(), "█") {
		t.Errorf("output missing chart:\n%s", out.String())
	}
}

func TestRunFromFileWithMetric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-metric", "latency_ms"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "latency_ms") {
		t.Error("requested metric missing")
	}
	if strings.Contains(out.String(), "gch_ratio") {
		t.Error("unrequested metric rendered")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "experiments: cachesize") {
		t.Errorf("list output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent.csv"}, nil, nil); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil, strings.NewReader(""), nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"-bogus"}, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(nil, strings.NewReader("garbage,no,header\n"), nil); err == nil {
		t.Error("malformed input accepted")
	}
}

func TestRunOutputIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(nil, strings.NewReader(sampleCSV), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, strings.NewReader(sampleCSV), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same input rendered differently:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}

func TestRunWidthScalesBars(t *testing.T) {
	var narrow, wide bytes.Buffer
	if err := run([]string{"-width", "10", "-metric", "latency_ms"}, strings.NewReader(sampleCSV), &narrow); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-width", "60", "-metric", "latency_ms"}, strings.NewReader(sampleCSV), &wide); err != nil {
		t.Fatal(err)
	}
	if strings.Count(wide.String(), "█") <= strings.Count(narrow.String(), "█") {
		t.Errorf("wider chart did not grow bars: narrow %d cells, wide %d cells",
			strings.Count(narrow.String(), "█"), strings.Count(wide.String(), "█"))
	}
}

func TestRunListIsSorted(t *testing.T) {
	const twoExp = sampleCSV + "skew,Fig 3,50,SC,10.0,0.1\n"
	var out bytes.Buffer
	if err := run([]string{"-list"}, strings.NewReader(twoExp), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out.String(), "\n")
	if !strings.Contains(lines[0], "cachesize") || !strings.Contains(lines[0], "skew") {
		t.Errorf("experiments line missing entries: %q", lines[0])
	}
}
