package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `experiment,figure,cachesize,scheme,latency_ms,gch_ratio
cachesize,Fig 2,50,SC,368.87,0.0
cachesize,Fig 2,50,COCA,29.32,0.337
`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cachesize") || !strings.Contains(out.String(), "█") {
		t.Errorf("output missing chart:\n%s", out.String())
	}
}

func TestRunFromFileWithMetric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-metric", "latency_ms"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "latency_ms") {
		t.Error("requested metric missing")
	}
	if strings.Contains(out.String(), "gch_ratio") {
		t.Error("unrequested metric rendered")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "experiments: cachesize") {
		t.Errorf("list output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent.csv"}, nil, nil); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(nil, strings.NewReader(""), nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"-bogus"}, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(nil, strings.NewReader("garbage,no,header\n"), nil); err == nil {
		t.Error("malformed input accepted")
	}
}
