// Command grococa-report renders the CSV output of grococa-bench as ASCII
// bar charts — a terminal regeneration of the paper's figures.
//
//	grococa-bench -exp cachesize -csv -q | grococa-report
//	grococa-report -in results.csv -metric gch_ratio
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grococa-report:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("grococa-report", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV file (default: stdin)")
	metric := fs.String("metric", "", "comma-separated metrics to chart (default: the four figure metrics)")
	width := fs.Int("width", 40, "bar width in characters")
	list := fs.Bool("list", false, "list experiments and metrics found, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		// Read-only file: a close failure cannot lose data.
		defer func() { _ = f.Close() }()
		src = f
	}
	rows, err := report.ParseCSV(src)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no data rows in input")
	}
	if *list {
		if _, err := fmt.Fprintln(stdout, "experiments:", strings.Join(report.Experiments(rows), ", ")); err != nil {
			return err
		}
		_, err := fmt.Fprintln(stdout, "metrics:    ", strings.Join(report.Metrics(rows), ", "))
		return err
	}
	var metrics []string
	if *metric != "" {
		metrics = strings.Split(*metric, ",")
	}
	out, err := report.RenderAll(rows, metrics, *width)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(stdout, out)
	return err
}
