package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// tinyArgs shrink the run so command tests finish in milliseconds.
var tinyArgs = []string{
	"-clients", "8", "-ndata", "400", "-accessrange", "80",
	"-cachesize", "15", "-warmup", "5", "-requests", "10",
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunRejectsUnknownDelivery(t *testing.T) {
	if err := run([]string{"-delivery", "bogus"}); err == nil {
		t.Error("unknown delivery model accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if err := run([]string{"-clients", "0"}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunEachScheme(t *testing.T) {
	for _, scheme := range []string{"sc", "coca", "grococa"} {
		args := append([]string{"-scheme", scheme, "-v"}, tinyArgs...)
		if err := run(args); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
}

func TestRunEachDelivery(t *testing.T) {
	for _, d := range []string{"pull", "push", "hybrid"} {
		args := append([]string{"-scheme", "sc", "-delivery", d}, tinyArgs...)
		if err := run(args); err != nil {
			t.Errorf("delivery %s: %v", d, err)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = w
	args := append([]string{"-scheme", "grococa", "-reps", "3", "-parallel", "4"}, tinyArgs...)
	runErr := run(args)
	os.Stdout = oldStdout
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"rep 0:", "rep 2:", "mean:", "sd:", "(n=3 reps)"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("replicated output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadReps(t *testing.T) {
	if err := run(append([]string{"-reps", "0"}, tinyArgs...)); err == nil {
		t.Error("-reps 0 accepted")
	}
}

func TestRunRejectsTraceWithReps(t *testing.T) {
	args := append([]string{"-reps", "2", "-tracefile", filepath.Join(t.TempDir(), "t.csv")}, tinyArgs...)
	if err := run(args); err == nil {
		t.Error("-tracefile with -reps > 1 accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	args := append([]string{"-scheme", "coca", "-tracefile", path}, tinyArgs...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want header + rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "sim_time_s,host,outcome,latency_ms") {
		t.Errorf("trace header = %q", lines[0])
	}
	if !strings.Contains(string(data), "local-hit") && !strings.Contains(string(data), "server-request") {
		t.Error("trace rows missing outcomes")
	}
}

func TestRunRejectsUnwritableTrace(t *testing.T) {
	args := append([]string{"-tracefile", "/nonexistent-dir/trace.csv"}, tinyArgs...)
	if err := run(args); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

// TestRunWithFrozenClock pins the injectable wall clock and checks the
// wall-time figure in the summary is computed from it (0s when frozen) —
// the seam the wallclock lint allowlist depends on.
func TestRunWithFrozenClock(t *testing.T) {
	old := wallClock
	wallClock = clock.Fixed{T: time.Unix(1700000000, 0)}
	defer func() { wallClock = old }()

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = w
	runErr := run(append([]string{"-scheme", "sc"}, tinyArgs...))
	os.Stdout = oldStdout
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(string(out), "wall=0s") {
		t.Errorf("frozen clock did not zero the wall-time figure:\n%s", out)
	}
}
