// Command grococa-sim runs a single cooperative-caching simulation and
// prints the measured metrics. Every Table II parameter is exposed as a
// flag; defaults reproduce the paper's default setting at a reduced request
// count.
//
// Example:
//
//	grococa-sim -scheme grococa -clients 100 -cachesize 100 -theta 0.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/resilience"
	"repro/internal/server"
)

// wallClock is the injectable wall-time source; command tests may freeze
// it with clock.Fixed.
var wallClock clock.Clock = clock.System{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grococa-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grococa-sim", flag.ContinueOnError)
	cfg := core.DefaultConfig()

	scheme := fs.String("scheme", "grococa",
		"caching scheme: "+strings.Join(core.SchemeFlags(), ", "))
	delivery := fs.String("delivery", "pull", "data delivery model: pull, push, hybrid")
	fs.Float64Var(&cfg.BroadcastKbps, "bcastbw", cfg.BroadcastKbps, "broadcast channel kbps (push/hybrid)")
	fs.IntVar(&cfg.BroadcastHotItems, "bcasthot", cfg.BroadcastHotItems, "hybrid hot set size in items")
	fs.DurationVar(&cfg.BroadcastReshuffle, "bcastreshuffle", cfg.BroadcastReshuffle, "hybrid hot set reshuffle period")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	fs.IntVar(&cfg.NumClients, "clients", cfg.NumClients, "number of mobile hosts")
	fs.IntVar(&cfg.NData, "ndata", cfg.NData, "number of data items at the server")
	fs.IntVar(&cfg.DataSize, "datasize", cfg.DataSize, "item size in bytes")
	fs.IntVar(&cfg.CacheSize, "cachesize", cfg.CacheSize, "client cache capacity in items")
	fs.Float64Var(&cfg.SpaceWidth, "width", cfg.SpaceWidth, "space width in metres")
	fs.Float64Var(&cfg.SpaceHeight, "height", cfg.SpaceHeight, "space height in metres")
	fs.IntVar(&cfg.GroupSize, "groupsize", cfg.GroupSize, "motion group size")
	fs.Float64Var(&cfg.GroupRadius, "groupradius", cfg.GroupRadius, "motion group radius in metres")
	fs.Float64Var(&cfg.MinSpeed, "vmin", cfg.MinSpeed, "minimum speed m/s")
	fs.Float64Var(&cfg.MaxSpeed, "vmax", cfg.MaxSpeed, "maximum speed m/s")
	fs.Float64Var(&cfg.ServerDownlinkKbps, "downlink", cfg.ServerDownlinkKbps, "server downlink kbps")
	fs.Float64Var(&cfg.ServerUplinkKbps, "uplink", cfg.ServerUplinkKbps, "server uplink kbps")
	fs.Float64Var(&cfg.P2PBandwidthKbps, "p2pbw", cfg.P2PBandwidthKbps, "P2P bandwidth kbps")
	fs.Float64Var(&cfg.TranRange, "range", cfg.TranRange, "transmission range metres")
	fs.IntVar(&cfg.HopDist, "hops", cfg.HopDist, "P2P search hop bound")
	fs.IntVar(&cfg.AccessRange, "accessrange", cfg.AccessRange, "per-group access range in items")
	fs.Float64Var(&cfg.Zipf, "theta", cfg.Zipf, "Zipf skewness θ")
	fs.IntVar(&cfg.WarmupRequests, "warmup", cfg.WarmupRequests, "warm-up requests per host")
	fs.IntVar(&cfg.MeasuredRequests, "requests", cfg.MeasuredRequests, "measured requests per host")
	fs.Float64Var(&cfg.DataUpdateRate, "updaterate", cfg.DataUpdateRate, "data updates per second")
	fs.Float64Var(&cfg.DiscProb, "discprob", cfg.DiscProb, "disconnection probability")
	fs.DurationVar(&cfg.DiscMin, "discmin", cfg.DiscMin, "minimum disconnection time")
	fs.DurationVar(&cfg.DiscMax, "discmax", cfg.DiscMax, "maximum disconnection time")
	fs.Float64Var(&cfg.DistanceThreshold, "delta", cfg.DistanceThreshold, "TCG distance threshold Δ (m)")
	fs.Float64Var(&cfg.SimilarityThreshold, "simdelta", cfg.SimilarityThreshold, "TCG similarity threshold δ")
	fs.Float64Var(&cfg.DistanceWeight, "omega", cfg.DistanceWeight, "distance EWMA weight ω")
	fs.IntVar(&cfg.SigBits, "sigbits", cfg.SigBits, "bloom filter size σ in bits")
	fs.IntVar(&cfg.SigHashes, "sighashes", cfg.SigHashes, "bloom hash count k")
	fs.IntVar(&cfg.ReplaceCandidate, "replacecand", cfg.ReplaceCandidate, "replacement candidate window")
	fs.IntVar(&cfg.ReplaceDelay, "replacedelay", cfg.ReplaceDelay, "SingletTTL initial value")
	fs.Float64Var(&cfg.PeerAccessSample, "rho", cfg.PeerAccessSample, "peer access report portion ρ_P")
	fs.DurationVar(&cfg.ExplicitUpdateAfter, "taup", cfg.ExplicitUpdateAfter, "explicit update silence τ_P")
	fs.IntVar(&cfg.SigRecollectAfter, "sigrecollect", cfg.SigRecollectAfter, "batch signature recollection after N departures (<=1 immediate)")
	criteria := fs.String("criteria", "both", "TCG criteria: both, distance, similarity")
	mobilityModel := fs.String("mobility", "waypoint", "mobility model: waypoint, manhattan")
	fs.Float64Var(&cfg.GridSpacing, "gridspacing", cfg.GridSpacing, "Manhattan street spacing in metres")
	fs.BoolVar(&cfg.EnableSpillover, "spillover", false, "spill evicted items to low-activity neighbors")
	fs.Float64Var(&cfg.SpilloverActivityRatio, "spillratio", cfg.SpilloverActivityRatio, "spill only to neighbors below this activity ratio")
	fs.Float64Var(&cfg.LowActivityFraction, "lowactivity", cfg.LowActivityFraction, "fraction of hosts with 10x slower request rate")
	fs.DurationVar(&cfg.HotspotShiftEvery, "shiftevery", cfg.HotspotShiftEvery, "interest drift period (0 = stationary)")
	fs.Float64Var(&cfg.HotspotShiftFraction, "shiftfraction", cfg.HotspotShiftFraction, "fraction of the hot mapping re-permuted per shift")
	fs.BoolVar(&cfg.DisableFilter, "nofilter", false, "disable the signature filtering mechanism")
	fs.BoolVar(&cfg.DisableAdmission, "noadmission", false, "disable cooperative admission control")
	fs.BoolVar(&cfg.DisableCoopReplace, "nocoopreplace", false, "disable cooperative replacement")
	fs.BoolVar(&cfg.DisableCompression, "nocompression", false, "disable signature compression")
	fs.Float64Var(&cfg.P2PLossProb, "p2ploss", cfg.P2PLossProb, "P2P per-message loss probability")
	fs.Float64Var(&cfg.P2PBitErrorRate, "p2pber", cfg.P2PBitErrorRate, "P2P bit error rate (size-dependent drops)")
	fs.Float64Var(&cfg.UplinkLossProb, "uplinkloss", cfg.UplinkLossProb, "server uplink loss probability")
	fs.Float64Var(&cfg.DownlinkLossProb, "downlinkloss", cfg.DownlinkLossProb, "server downlink loss probability")
	fs.DurationVar(&cfg.ServerOutagePeriod, "outageperiod", cfg.ServerOutagePeriod, "server outage period (0 = no outages)")
	fs.DurationVar(&cfg.ServerOutageDuration, "outageduration", cfg.ServerOutageDuration, "server outage duration per period")
	fs.DurationVar(&cfg.CrashMTBF, "crashmtbf", cfg.CrashMTBF, "mean host up-time between crashes (0 = no crash churn)")
	fs.DurationVar(&cfg.CrashDownMin, "crashdownmin", cfg.CrashDownMin, "minimum crash downtime")
	fs.DurationVar(&cfg.CrashDownMax, "crashdownmax", cfg.CrashDownMax, "maximum crash downtime")
	fs.IntVar(&cfg.RetrieveRetryLimit, "retrieveretry", cfg.RetrieveRetryLimit, "alternate-holder retries after a data timeout")
	fs.IntVar(&cfg.ServerRetryLimit, "serverretry", cfg.ServerRetryLimit, "rescue re-sends of a lost MSS exchange (0 disables)")
	fs.Float64Var(&cfg.ServerRescueFactor, "rescuefactor", cfg.ServerRescueFactor, "rescue timeout scale over the queue-aware RTT estimate")
	resil := fs.Bool("resilience", false, "enable the unified resilience policy (retry budgets, jittered backoff, MSS-link breaker, hedging, serve-stale)")
	pol := resilience.DefaultPolicy()
	fs.IntVar(&pol.RetryBudget, "retrybudget", pol.RetryBudget, "per-request retry budget (with -resilience)")
	fs.Float64Var(&pol.Jitter, "retryjitter", pol.Jitter, "backoff jitter fraction in [0,1] (with -resilience)")
	fs.DurationVar(&pol.Deadline, "reqdeadline", pol.Deadline, "per-request deadline (with -resilience)")
	fs.IntVar(&pol.BreakerFailures, "breakerfailures", pol.BreakerFailures, "consecutive MSS failures that open the breaker, 0 disables (with -resilience)")
	fs.DurationVar(&pol.BreakerOpenFor, "breakeropen", pol.BreakerOpenFor, "open-breaker window before a half-open probe (with -resilience)")
	fs.Float64Var(&pol.HedgeAfter, "hedgeafter", pol.HedgeAfter, "hedge a second holder after this fraction of the data timeout, 0 disables (with -resilience)")
	fs.BoolVar(&pol.ServeStale, "servestale", pol.ServeStale, "serve expired cached copies during open-breaker windows (with -resilience)")
	fs.DurationVar(&pol.ServeStaleMaxAge, "servestalemax", pol.ServeStaleMaxAge, "maximum age past expiry served stale, 0 unbounded (with -resilience)")
	verbose := fs.Bool("v", false, "print auxiliary counters and host diagnostics")
	traceFile := fs.String("tracefile", "", "write a CSV trace of every measured request to this file")
	reps := fs.Int("reps", 1, "independent replications with derived seeds; > 1 prints mean ± sample sd")
	parallel := fs.Int("parallel", 0, "worker goroutines for -reps (0 = GOMAXPROCS); output is identical for any value")
	resume := fs.String("resume", "", "journal completed replications in this directory and resume an interrupted run from it (implies the -reps path)")

	if err := fs.Parse(args); err != nil {
		return err
	}
	parsedScheme, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	cfg.Scheme = parsedScheme
	if *resil {
		cfg.Resilience = pol
	}
	switch *delivery {
	case "pull":
		cfg.Delivery = core.DeliveryPull
	case "push":
		cfg.Delivery = core.DeliveryPush
	case "hybrid":
		cfg.Delivery = core.DeliveryHybrid
	default:
		return fmt.Errorf("unknown delivery model %q (want pull, push or hybrid)", *delivery)
	}
	switch *mobilityModel {
	case "waypoint":
		cfg.Mobility = core.MobilityWaypoint
	case "manhattan":
		cfg.Mobility = core.MobilityManhattan
	default:
		return fmt.Errorf("unknown mobility model %q (want waypoint or manhattan)", *mobilityModel)
	}
	switch *criteria {
	case "both":
		cfg.GroupCriteria = server.CriteriaBoth
	case "distance":
		cfg.GroupCriteria = server.CriteriaDistanceOnly
	case "similarity":
		cfg.GroupCriteria = server.CriteriaSimilarityOnly
	default:
		return fmt.Errorf("unknown criteria %q (want both, distance or similarity)", *criteria)
	}

	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}
	if *reps > 1 || *resume != "" {
		if *traceFile != "" {
			return fmt.Errorf("-tracefile requires -reps 1 without -resume (a trace is one run's requests)")
		}
		return runReplicated(cfg, *reps, *parallel, *resume)
	}

	start := wallClock.Now()
	s, err := core.New(cfg)
	if err != nil {
		return err
	}
	var traceW *bufio.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		// Close errors are surfaced by the explicit Flush+Close below;
		// this deferred close only covers early error returns.
		defer func() { _ = f.Close() }()
		traceW = bufio.NewWriter(f)
		if _, err := fmt.Fprintln(traceW, "sim_time_s,host,outcome,latency_ms"); err != nil {
			return err
		}
		s.Collector().OnRecord = func(at time.Duration, host network.NodeID, outcome client.Outcome, latency time.Duration) {
			// bufio's error is sticky: a failed row write resurfaces at
			// the post-run Flush, so it is safe to discard here.
			_, _ = fmt.Fprintf(traceW, "%.3f,%d,%s,%.3f\n",
				at.Seconds(), host, outcome, float64(latency)/float64(time.Millisecond))
		}
	}
	r, err := s.Run()
	if err != nil {
		return err
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
	}
	fmt.Println(r)
	fmt.Printf("latency: p50=%v p95=%v p99=%v\n",
		r.P50Latency.Round(100*time.Microsecond),
		r.P95Latency.Round(100*time.Microsecond),
		r.P99Latency.Round(100*time.Microsecond))
	fmt.Printf("sim-time=%v events=%d wall=%v downlink-util=%.1f%% total-energy=%.2fJ completed=%v\n",
		r.SimTime.Round(time.Second), r.Events, clock.Since(wallClock, start).Round(time.Millisecond),
		100*r.DownlinkUtilization, r.TotalEnergy/1e6, r.Completed)
	if r.Faults.Any() || *verbose {
		fmt.Printf("faults: %v\n", r.Faults)
	}
	if *verbose {
		fmt.Printf("aux: %+v\n", r.Aux)
		cats := make([]string, 0, len(r.EnergyBreakdown))
		for cat := range r.EnergyBreakdown {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		fmt.Print("energy:")
		for _, cat := range cats {
			fmt.Printf(" %s=%.2fJ", cat, r.EnergyBreakdown[cat]/1e6)
		}
		fmt.Println()
		if s.MSS().TCG() != nil {
			var sum, max int
			for _, h := range s.Hosts() {
				n := h.TCGSize()
				sum += n
				if n > max {
					max = n
				}
			}
			fmt.Printf("tcg: mean-size=%.2f max-size=%d (of group size %d)\n",
				float64(sum)/float64(len(s.Hosts())), max, cfg.GroupSize)
			// Signature coverage ground truth: of the items actually
			// cached by TCG members right now, what fraction does each
			// host's peer vector cover?
			hosts := s.Hosts()
			var covered, total int
			for _, h := range hosts {
				for _, mid := range h.TCGMembers() {
					for _, item := range hosts[mid].Cache().Items() {
						total++
						if h.CoversItem(item) {
							covered++
						}
					}
				}
			}
			if total > 0 {
				fmt.Printf("sig-coverage: %.1f%% of %d member-cached items\n",
					100*float64(covered)/float64(total), total)
			}
		}
	}
	return nil
}

// runReplicated runs the configuration -reps times on the parallel sweep
// engine (replication 0 keeps the flag seed, later replications derive
// independent seeds) and prints each replication plus the mean ± sample
// standard deviation.
func runReplicated(cfg core.Config, reps, workers int, resume string) error {
	start := wallClock.Now()
	var jr *checkpoint.Journal
	if resume != "" {
		// Bind the journal to the full configuration and replication count:
		// resuming with any changed flag is refused rather than mixing runs.
		meta := fmt.Sprintf("grococa-sim reps=%d cfg=%+v", reps, cfg)
		var err error
		jr, err = checkpoint.OpenJournal(resume, []byte(meta))
		if err != nil {
			return err
		}
		defer func() { _ = jr.Close() }()
	}
	rs, p, err := experiments.ReplicateJournaled(cfg, reps, workers, jr)
	if err != nil {
		return err
	}
	for i, r := range rs {
		fmt.Printf("rep %d: %v\n", i, r)
	}
	if p.Spread == nil {
		fmt.Printf("mean:  %v\n", p.Results)
		fmt.Printf("wall=%v\n", clock.Since(wallClock, start).Round(time.Millisecond))
		return nil
	}
	fmt.Printf("mean:  %v\n", p.Results)
	sp := p.Spread
	fmt.Printf("sd:    latency=%.3fms server=%.2f%% LCH=%.2f%% GCH=%.2f%% power/GCH=%.0fµWs energy=%.3fJ (n=%d reps)\n",
		sp.LatencyMS, 100*sp.ServerReqRatio, 100*sp.LocalHitRatio, 100*sp.GlobalHitRatio,
		sp.EnergyPerGCH, sp.TotalEnergyJ, p.Reps)
	fmt.Printf("wall=%v\n", clock.Since(wallClock, start).Round(time.Millisecond))
	return nil
}
